// Core access-path benchmarks: the steady-state cost of one lower-level
// cache access for every organization and the full NuRAPID policy
// matrix. These seed the repository's perf trajectory: `make bench-core`
// runs the suite, writes BENCH_core.json, and CI fails when ns/access
// regresses more than 10% against the committed baseline.
package nurapid

import (
	"testing"

	"nurapid/internal/cacti"
	"nurapid/internal/mathx"
	"nurapid/internal/memsys"
	"nurapid/internal/nuca"
	core "nurapid/internal/nurapid"
	"nurapid/internal/uca"
)

// coreBenchAccesses is the length of the replayed request stream; long
// enough that the cache reaches steady state (full occupancy, ongoing
// promotions/demotions) well inside the first replay.
const coreBenchAccesses = 1 << 16

// coreBenchStream builds the deterministic access stream every core
// benchmark replays: conflict-heavy traffic over a few hundred sets with
// ~3x more live tags than ways, so steady state exercises hits in every
// d-group, misses, evictions, and demotion ripples.
func coreBenchStream(blockBytes, numSets int) []memsys.Request {
	rng := mathx.NewRNG(1)
	reqs := make([]memsys.Request, coreBenchAccesses)
	for i := range reqs {
		set := rng.Intn(256)
		tag := rng.Intn(24)
		reqs[i] = memsys.Request{
			Addr:  uint64(tag*numSets+set) * uint64(blockBytes),
			Write: rng.Bool(0.3),
			Gap:   int64(rng.Intn(4)),
		}
	}
	return reqs
}

// replayStream drives the whole stream through l2 once, back to back:
// request i issues when request i-1 completes plus its think-time gap —
// the same replay clock the differential harness uses.
func replayStream(l2 memsys.LowerLevel, now int64, reqs []memsys.Request) int64 {
	return memsys.AccessMany(l2, now, reqs, nil)
}

// benchCache measures ns/access and allocs/access of l2 in steady
// state: the first replay warms the cache, then each b.N iteration
// replays the full stream.
func benchCache(b *testing.B, l2 memsys.LowerLevel, blockBytes, numSets int) {
	reqs := coreBenchStream(blockBytes, numSets)
	now := replayStream(l2, 0, reqs) // warm-up replay reaches steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = replayStream(l2, now, reqs)
	}
	b.StopTimer()
	nsPerAccess := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(coreBenchAccesses)
	b.ReportMetric(nsPerAccess, "ns/access")
}

// nurapidBenchCfg is the benchmark geometry: 4 MB with the paper's
// 128-B blocks keeps construction fast while the conflict-heavy stream
// still thrashes every structure.
func nurapidBenchCfg(groups int, prom core.Promotion, dist core.DistancePolicy, placement core.Placement) core.Config {
	cfg := core.DefaultConfig()
	cfg.CapacityBytes = 4 << 20
	cfg.NumDGroups = groups
	cfg.Promotion = prom
	cfg.Distance = dist
	cfg.Placement = placement
	return cfg
}

// BenchmarkCoreNuRAPID is the headline steady-state benchmark (the
// BENCH_core.json gate): the paper's primary design scaled to the bench
// geometry — 4 d-groups, next-fastest promotion, random distance
// replacement, distance-associative placement.
func BenchmarkCoreNuRAPID(b *testing.B) {
	cfg := nurapidBenchCfg(4, core.NextFastest, core.RandomDistance, core.DistanceAssociative)
	mem := memsys.NewMemory(cfg.BlockBytes)
	c := core.MustNew(cfg, cacti.Default(), mem)
	benchCache(b, c, cfg.BlockBytes, numSetsOf(cfg))
}

// BenchmarkCoreNuRAPIDMatrix covers the policy matrix: every promotion
// policy x distance policy under distance-associative placement, plus
// the set-associative comparison cache.
func BenchmarkCoreNuRAPIDMatrix(b *testing.B) {
	promos := []core.Promotion{core.DemotionOnly, core.NextFastest, core.Fastest}
	dists := []core.DistancePolicy{core.RandomDistance, core.LRUDistance}
	for _, prom := range promos {
		for _, dist := range dists {
			cfg := nurapidBenchCfg(4, prom, dist, core.DistanceAssociative)
			b.Run(prom.String()+"-"+dist.String(), func(b *testing.B) {
				mem := memsys.NewMemory(cfg.BlockBytes)
				benchCache(b, core.MustNew(cfg, cacti.Default(), mem), cfg.BlockBytes, numSetsOf(cfg))
			})
		}
	}
	sa := nurapidBenchCfg(4, core.NextFastest, core.RandomDistance, core.SetAssociative)
	b.Run("next-fastest-random-sa", func(b *testing.B) {
		mem := memsys.NewMemory(sa.BlockBytes)
		benchCache(b, core.MustNew(sa, cacti.Default(), mem), sa.BlockBytes, numSetsOf(sa))
	})
}

func numSetsOf(cfg core.Config) int {
	return int(cfg.CapacityBytes) / cfg.BlockBytes / cfg.Assoc
}

// BenchmarkCoreDNUCA measures the D-NUCA baseline under both
// smart-search policies.
func BenchmarkCoreDNUCA(b *testing.B) {
	for _, pol := range []nuca.SearchPolicy{nuca.SSPerformance, nuca.SSEnergy} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := nuca.DefaultConfig()
			cfg.CapacityBytes = 2 << 20
			mem := memsys.NewMemory(cfg.BlockBytes)
			cfg.Policy = pol
			c := nuca.MustNew(cfg, cacti.Default(), mem)
			numSets := int(cfg.CapacityBytes) / cfg.BlockBytes / cfg.Assoc
			benchCache(b, c, cfg.BlockBytes, numSets)
		})
	}
}

// BenchmarkCoreUCA measures the conventional baselines: the L2/L3
// base hierarchy and the ideal uniform bound.
func BenchmarkCoreUCA(b *testing.B) {
	m := cacti.Default()
	b.Run("base-l2l3", func(b *testing.B) {
		mem := memsys.NewMemory(uca.BlockBytes)
		h := uca.NewHierarchy(m, mem)
		benchCache(b, h, uca.BlockBytes, h.L3().Geometry().NumSets())
	})
	b.Run("ideal", func(b *testing.B) {
		mem := memsys.NewMemory(uca.BlockBytes)
		u := uca.NewIdeal(m, mem)
		benchCache(b, u, uca.BlockBytes, u.Cache().Geometry().NumSets())
	})
}
