package nurapid

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSweepEntryGateStamp pins the per-entry gate stamps: on a host that
// cannot measure parallelism every entry says so (naming the proc
// count), and on a capable host exactly the 4-worker point reads as
// enforced.
func TestSweepEntryGateStamp(t *testing.T) {
	for _, w := range benchSweepWorkers {
		if got := sweepEntryGate(w, 1); got != "skipped (GOMAXPROCS=1)" {
			t.Errorf("gate(workers=%d, procs=1) = %q", w, got)
		}
	}
	if got := sweepEntryGate(4, 8); !strings.HasPrefix(got, "enforced") {
		t.Errorf("gate(workers=4, procs=8) = %q, want enforced", got)
	}
	for _, w := range []int{1, 2, 8, 16} {
		if got := sweepEntryGate(w, 8); strings.HasPrefix(got, "enforced") {
			t.Errorf("gate(workers=%d, procs=8) = %q; only the 4-worker point gates", w, got)
		}
	}
}

// TestShouldWriteRunnerBench pins the overwrite policy: a low-proc run
// must never replace a record whose efficiency gate was actually
// enforced, while missing, unreadable, or same-capability records are
// fair game.
func TestShouldWriteRunnerBench(t *testing.T) {
	record := func(procs int) []byte {
		data, err := json.Marshal(runnerBench{GOMAXPROCS: procs})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name  string
		prev  []byte
		procs int
		want  bool
	}{
		{"no-previous-record", nil, 1, true},
		{"unreadable-record", []byte("{not json"), 1, true},
		{"one-proc-over-one-proc", record(1), 1, true},
		{"one-proc-over-enforced", record(16), 1, false},
		{"two-proc-over-enforced", record(4), 2, false},
		{"four-proc-over-enforced", record(16), 4, true},
		{"many-proc-over-one-proc", record(1), 16, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, reason := shouldWriteRunnerBench(tc.prev, tc.procs)
			if got != tc.want {
				t.Fatalf("shouldWriteRunnerBench(procs=%d) = %v (%s), want %v",
					tc.procs, got, reason, tc.want)
			}
			if reason == "" {
				t.Fatal("decision carries no reason")
			}
		})
	}
}
